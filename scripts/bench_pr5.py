"""PR 5 benchmark: multi-process worker pool vs the single engine.

Measures ``predict_many`` throughput for the in-process engine and for
a ``WorkerPool`` at 1, 2 and 4 workers over the same traffic, plus the
shared-memory arena footprint and the float32-cast accuracy delta.

Output correctness is a hard gate: at every worker count the pool's
labels must be bitwise-identical to the single engine's, and in float64
mode (the default) the probabilities must be bitwise-identical too.

The throughput gate is conditional on hardware. Scaling to 4 worker
processes can only beat the single engine 2x when the host actually
exposes enough cores to run them; on a CPU-starved container the pool
degrades to time-slicing the same core and the bench records
``cpu_limited`` instead of faking a speedup. Both the usable-core count
and the raw speedups land in the JSON so the numbers can be judged in
context.

Writes machine-readable results to BENCH_PR5.json (checks evaluated at
exit, non-zero on failure).

Usage:
    PYTHONPATH=src python scripts/bench_pr5.py [scale] [output.json]
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

import numpy as np

from repro import perf
from repro.core.config import CorpusConfig
from repro.core.pipeline import build_dataset
from repro.models import export_state, import_state
from repro.models.neural_common import TrainerConfig
from repro.models.plm import PLMConfig
from repro.models.roberta import RobertaRiskModel
from repro.serve import EngineConfig, PoolConfig, run_pool_bench
from repro.temporal.windows import PostWindow

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_TARGET = 2.0  # 4-worker pool vs single engine, given the cores
FLOAT32_PROB_TOL = 1e-4  # documented cast tolerance (tests/models)


def train_small_plm(splits, pretrain_texts):
    """Same compact PLM as scripts/bench_pr2.py, for comparable numbers."""
    model = RobertaRiskModel(
        config=PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                         max_len=96),
        trainer=TrainerConfig(epochs=2, batch_size=16, patience=3, seed=0),
        pretrain_texts=pretrain_texts[:2000],
        pretrain_steps=30,
        seed=0,
    )
    model.fit(splits.train, splits.validation)
    return model


def single_post_windows(windows):
    """One-post windows — the serving unit (see scripts/bench_pr2.py)."""
    return [
        PostWindow(author=w.author, posts=(post,), label=w.label)
        for w in windows
        for post in w.posts
    ]


def usable_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux fallback
        return os.cpu_count() or 1


def float32_cast_figures(model, windows) -> dict:
    full = export_state(model)
    cast = export_state(model, cast_float32=True)
    clone = import_state(cast.skeleton, cast.manifest, cast.arena)
    reference = model.predict_proba(windows)
    delta = np.abs(clone.predict_proba(windows) - reference)
    return {
        "arena_nbytes_float64": full.nbytes,
        "arena_nbytes_float32": cast.nbytes,
        "compression_ratio": full.nbytes / max(cast.nbytes, 1),
        "max_prob_delta": float(delta.max()) if delta.size else 0.0,
        "labels_identical": bool(
            np.array_equal(
                clone.predict(windows), reference.argmax(axis=1)
            )
        ),
    }


def main(argv: list[str]) -> int:
    scale = float(argv[0]) if argv else 0.1
    output = Path(argv[1]) if len(argv) > 1 else Path("BENCH_PR5.json")

    perf.reset()
    cpus = usable_cpus()
    print(f"bench_pr5: scale={scale} usable_cpus={cpus}")
    results: dict = {"scale": scale, "usable_cpus": cpus}

    build = build_dataset(CorpusConfig().scaled(scale), near_dedup=False)
    splits = build.dataset.splits()
    model = train_small_plm(splits, build.dataset.pretrain_texts)
    windows = single_post_windows(
        (splits.test or []) + (splits.validation or []) + splits.train
    )[:64]

    pool_runs: dict[str, dict] = {}
    for workers in WORKER_COUNTS:
        bench = run_pool_bench(
            model, windows, requests=256,
            config=PoolConfig(
                num_workers=workers,
                engine=EngineConfig(max_batch_size=32),
            ),
        )
        pool_runs[str(workers)] = bench.as_dict()
        print(f"  {workers}w  engine {bench.single_throughput:8.1f} rps  "
              f"pool {bench.pool_throughput:8.1f} rps  "
              f"({bench.speedup:.2f}x)  "
              f"labels={'ok' if bench.labels_identical else 'MISMATCH'}  "
              f"bitwise={'ok' if bench.probs_bitwise_identical else 'NO'}")
    results["pool"] = pool_runs
    results["arena_nbytes"] = pool_runs["1"]["arena_nbytes"]

    results["float32_cast"] = float32_cast_figures(model, windows)
    f32 = results["float32_cast"]
    print(f"  arena        {f32['arena_nbytes_float64']} B float64 -> "
          f"{f32['arena_nbytes_float32']} B float32 "
          f"({f32['compression_ratio']:.2f}x), "
          f"max prob delta {f32['max_prob_delta']:.2e}")

    four = pool_runs["4"]
    speedup_4w = four["speedup"]
    # 4 worker processes + the parent need ~5 usable cores before the
    # 2x bar is physically reachable; below that, record the hardware
    # limit instead of pretending the bound was met.
    cpu_limited = cpus < 5
    results["speedup_4_workers"] = speedup_4w
    results["cpu_limited"] = cpu_limited

    checks = {
        "pool_labels_bitwise_identical": all(
            run["labels_identical"] and run["probs_bitwise_identical"]
            for run in pool_runs.values()
        ),
        "float32_delta_within_tolerance": (
            f32["max_prob_delta"] < FLOAT32_PROB_TOL
        ),
        "pool_4w_speedup_or_cpu_limited": (
            speedup_4w >= SPEEDUP_TARGET or cpu_limited
        ),
        # Latency is observed per sharded chunk as its Future resolves,
        # so the count tracks chunks (cumulative across runs), not raw
        # requests — presence is what matters here.
        "latency_samples_present": all(
            run["latency"]["count"] > 0 for run in pool_runs.values()
        ),
    }
    results["checks"] = checks

    if cpu_limited and speedup_4w < SPEEDUP_TARGET:
        print(f"  NOTE: {cpus} usable core(s) — 4-worker speedup "
              f"{speedup_4w:.2f}x recorded as cpu_limited, not a pass "
              f"of the {SPEEDUP_TARGET:.0f}x bar")
    for name, ok in checks.items():
        print(f"  check {name:<34} {'PASS' if ok else 'FAIL'}")

    perf.write_json(output, extra={"benchmarks": results})
    print(f"wrote {output}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
