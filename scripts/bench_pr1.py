"""Hot-path benchmark: vectorized kernels and warm cache vs their
predecessors. Writes machine-readable results to BENCH_PR1.json.

"before" numbers run the retained ``_reference`` implementations (or a
cold cache); "after" numbers run the shipped vectorized kernels (or a
warm cache). Targets: >= 2x on the GBM split scan and MinHash
microbenchmarks, >= 5x warm-vs-cold dataset build.

Usage:
    PYTHONPATH=src python scripts/bench_pr1.py [scale] [output.json]
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import perf
from repro.boosting.tree import RegressionTree, TreeParams
from repro.core.cache import BuildCache, build_dataset_cached
from repro.core.config import AnnotationConfig, CorpusConfig
from repro.eval.runner import run_repeated
from repro.models.bilstm import TimeAwareBiLSTM
from repro.models.neural_common import TrainerConfig
from repro.models.xgboost_baseline import XGBoostBaseline
from repro.nn.rnn import _Recurrent
from repro.preprocess.dedup import MinHasher, remove_near_duplicates, shingles


def best_of(fn, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def bench_split_scan() -> dict:
    # Node-level workload: a grown tree calls _best_split once per node,
    # overwhelmingly on a few hundred rows — time a batch of such scans.
    rng = np.random.default_rng(0)
    n, n_features, calls = 200, 20, 200
    x = rng.normal(size=(n, n_features))
    g = rng.normal(size=n)
    h = np.ones(n)
    tree = RegressionTree(TreeParams())
    args = (
        x, g, h, np.arange(n), np.arange(n_features),
        float(g.sum()), float(h.sum()),
    )
    after = best_of(lambda: [tree._best_split(*args) for _ in range(calls)])
    before = best_of(
        lambda: [tree._best_split_reference(*args) for _ in range(calls)]
    )
    return {"before_s": before, "after_s": after, "speedup": before / after}


def bench_minhash() -> dict:
    hasher = MinHasher(num_perm=128)
    sets = [
        shingles(f"benchmark text number {i} with several shared words " * 4)
        for i in range(100)
    ]
    after = best_of(lambda: [hasher.signature(s) for s in sets])
    before = best_of(lambda: [hasher._signature_reference(s) for s in sets])
    return {"before_s": before, "after_s": after, "speedup": before / after}


def bench_build_cache(config, annotation) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        cache = BuildCache(root=Path(tmp) / "cache")
        start = time.perf_counter()
        build_dataset_cached(config, annotation, near_dedup=False, cache=cache)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        build_dataset_cached(config, annotation, near_dedup=False, cache=cache)
        warm = time.perf_counter() - start
    return {"cold_s": cold, "warm_s": warm, "speedup": cold / warm}


def _unfused_scan():
    """Context that forces the pre-fusion per-step recurrence."""
    original = _Recurrent._scan

    class _Restore:
        def __enter__(self):
            def unfused(self, cell, x, mask, reverse, fused=True):
                return original(self, cell, x, mask, reverse, fused=False)

            _Recurrent._scan = unfused

        def __exit__(self, *exc):
            _Recurrent._scan = original

    return _Restore()


def _reference_split():
    original = RegressionTree._best_split

    class _Restore:
        def __enter__(self):
            RegressionTree._best_split = RegressionTree._best_split_reference

        def __exit__(self, *exc):
            RegressionTree._best_split = original

    return _Restore()


def bench_xgboost_fit(splits) -> dict:
    def fit():
        XGBoostBaseline(seed=0).fit(splits.train, splits.validation)

    after = best_of(fit, repeats=2)
    with _reference_split():
        before = best_of(fit, repeats=2)
    return {"before_s": before, "after_s": after, "speedup": before / after}


def bench_bilstm_epoch(splits) -> dict:
    def fit():
        model = TimeAwareBiLSTM(
            trainer=TrainerConfig(epochs=1, seed=0), seed=0
        )
        model.fit(splits.train, splits.validation)

    after = best_of(fit, repeats=3)
    with _unfused_scan():
        before = best_of(fit, repeats=3)
    return {"before_s": before, "after_s": after, "speedup": before / after}


def bench_near_dedup(posts) -> dict:
    elapsed = best_of(lambda: remove_near_duplicates(posts), repeats=1)
    return {"after_s": elapsed, "posts": len(posts)}


def bench_run_repeated(splits) -> dict:
    elapsed = best_of(
        lambda: run_repeated("logreg", splits, seeds=(0, 1, 2), n_jobs=1),
        repeats=1,
    )
    return {"seeds": 3, "after_s": elapsed}


def main(argv: list[str]) -> int:
    scale = float(argv[0]) if argv else 0.1
    output = Path(argv[1]) if len(argv) > 1 else Path("BENCH_PR1.json")
    config = CorpusConfig().scaled(scale)
    annotation = AnnotationConfig(seed=config.seed)

    perf.reset()
    print(f"bench_pr1: scale={scale}")
    results = {"scale": scale}

    results["split_scan"] = bench_split_scan()
    results["minhash"] = bench_minhash()
    results["dataset_build"] = bench_build_cache(config, annotation)

    build = build_dataset_cached(config, annotation, near_dedup=False)
    splits = build.dataset.splits()
    results["near_dedup"] = bench_near_dedup(
        build.corpus.annotated_posts[:2000]
    )
    results["xgboost_fit"] = bench_xgboost_fit(splits)
    results["bilstm_epoch"] = bench_bilstm_epoch(splits)
    results["run_repeated"] = bench_run_repeated(splits)

    checks = {
        "split_scan_2x": results["split_scan"]["speedup"] >= 2.0,
        "minhash_2x": results["minhash"]["speedup"] >= 2.0,
        "warm_cache_5x": results["dataset_build"]["speedup"] >= 5.0,
    }
    results["checks"] = checks

    for name, stats in results.items():
        if isinstance(stats, dict) and "speedup" in stats:
            print(f"  {name:<14} {stats['speedup']:6.1f}x")
    for name, ok in checks.items():
        print(f"  check {name:<20} {'PASS' if ok else 'FAIL'}")

    perf.write_json(output, extra={"benchmarks": results})
    print(f"wrote {output}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
