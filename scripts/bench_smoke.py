"""Fast perf smoke pass: run the ``perf_smoke`` marked tests at a tiny scale.

A cheap pre-merge guard that the vectorized kernels still beat their
``_reference`` twins and that a warm cache beats a cold build (the cache
check builds at scale 0.05), without paying for the full
scripts/bench_pr1.py run.

Usage:
    PYTHONPATH=src python scripts/bench_smoke.py [extra pytest args...]
"""

from __future__ import annotations

import sys

import pytest


def main(argv: list[str]) -> int:
    return pytest.main(["-m", "perf_smoke", "-q", *argv])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
