"""PR 3 benchmark: telemetry overhead + per-request latency quantiles.

Guards the acceptance bound on the telemetry subsystem: serve-bench
throughput with tracing enabled must stay within 10% of (a) the
tracing-disabled run measured in the same process — the same-machine
apples-to-apples bound — and (b) the engine throughput recorded in
BENCH_PR2.json before telemetry existed, when that file is present.

Also records what the telemetry adds that PR 2 could not measure at
all: per-request p50/p90/p99 end-to-end latency and queue wait from the
engine's request traces, the trace/slow-log counters, and a validated
Prometheus rendering of the serve metrics.

Writes machine-readable results to BENCH_PR3.json (checks evaluated at
exit, non-zero on failure).

Usage:
    PYTHONPATH=src python scripts/bench_pr3.py [scale] [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro import perf
from repro.core.config import CorpusConfig
from repro.core.pipeline import build_dataset
from repro.models.neural_common import TrainerConfig
from repro.models.plm import PLMConfig
from repro.models.roberta import RobertaRiskModel
from repro.perf import render_prometheus, validate_prometheus
from repro.serve import EngineConfig, run_serve_bench
from repro.temporal.windows import PostWindow

OVERHEAD_BUDGET = 0.10  # tracing may cost at most 10% throughput


def train_small_plm(splits, pretrain_texts):
    """Same compact PLM as scripts/bench_pr2.py, for comparable numbers."""
    model = RobertaRiskModel(
        config=PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                         max_len=96),
        trainer=TrainerConfig(epochs=2, batch_size=16, patience=3, seed=0),
        pretrain_texts=pretrain_texts[:2000],
        pretrain_steps=30,
        seed=0,
    )
    model.fit(splits.train, splits.validation)
    return model


def single_post_windows(windows):
    """One-post windows — the serving unit (see scripts/bench_pr2.py)."""
    return [
        PostWindow(author=w.author, posts=(post,), label=w.label)
        for w in windows
        for post in w.posts
    ]


def bench_overhead(model, windows, requests: int = 384) -> dict:
    """Serve bench twice: tracing off (baseline) then on (telemetry)."""
    base = EngineConfig(max_batch_size=32)
    off = run_serve_bench(
        model, windows, requests=requests,
        config=EngineConfig(max_batch_size=32, tracing=False),
    )
    on = run_serve_bench(model, windows, requests=requests, config=base)
    return {
        "requests": requests,
        "tracing_off": off.as_dict(),
        "tracing_on": on.as_dict(),
        "overhead_ratio": (
            off.after_throughput / on.after_throughput
            if on.after_throughput else float("inf")
        ),
    }


def pr2_serve_figure(path: Path) -> float | None:
    """Engine throughput recorded by scripts/bench_pr2.py, if available."""
    if not path.exists():
        return None
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
        return float(
            payload["benchmarks"]["serve"]["after_throughput_rps"]
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError):
        return None


def main(argv: list[str]) -> int:
    scale = float(argv[0]) if argv else 0.1
    output = Path(argv[1]) if len(argv) > 1 else Path("BENCH_PR3.json")

    perf.reset()
    print(f"bench_pr3: scale={scale}")
    results: dict = {"scale": scale}

    build = build_dataset(CorpusConfig().scaled(scale), near_dedup=False)
    splits = build.dataset.splits()
    model = train_small_plm(splits, build.dataset.pretrain_texts)
    windows = single_post_windows(
        (splits.test or []) + (splits.validation or []) + splits.train
    )[:64]

    results["overhead"] = bench_overhead(model, windows)
    on = results["overhead"]["tracing_on"]
    off = results["overhead"]["tracing_off"]

    # The serve metrics the run produced must render as valid
    # Prometheus exposition text.
    prom_text = render_prometheus(perf.snapshot())
    validate_prometheus(prom_text)
    results["prometheus"] = {
        "lines": len(prom_text.splitlines()),
        "valid": True,
    }

    pr2_rps = pr2_serve_figure(Path("BENCH_PR2.json"))
    results["pr2_after_throughput_rps"] = pr2_rps

    checks = {
        "labels_identical": on["labels_identical"] and off["labels_identical"],
        "tracing_overhead_within_10pct": (
            results["overhead"]["overhead_ratio"] <= 1.0 + OVERHEAD_BUDGET
        ),
        "latency_quantiles_reported": (
            on["latency"].get("p99_ms", 0.0) > 0.0
            and "p50_ms" in on["queue_wait"]
        ),
        "traces_cover_run": (
            on["engine_stats"]["traces"]["finished"] >= on["requests"]
        ),
        "prometheus_valid": results["prometheus"]["valid"],
    }
    if pr2_rps is not None:
        checks["tracing_on_within_10pct_of_pr2"] = (
            on["after_throughput_rps"] >= (1.0 - OVERHEAD_BUDGET) * pr2_rps
        )
    results["checks"] = checks

    print(f"  engine rps   off {off['after_throughput_rps']:8.1f}  "
          f"on {on['after_throughput_rps']:8.1f}  "
          f"(overhead {100 * (results['overhead']['overhead_ratio'] - 1):+.1f}%)")
    if pr2_rps is not None:
        print(f"  BENCH_PR2    {pr2_rps:8.1f} rps recorded")
    lat, qw = on["latency"], on["queue_wait"]
    print(f"  latency      p50 {lat['p50_ms']:.2f}ms  p90 {lat['p90_ms']:.2f}ms  "
          f"p99 {lat['p99_ms']:.2f}ms  max {lat['max_ms']:.2f}ms")
    print(f"  queue wait   p50 {qw['p50_ms']:.2f}ms  p99 {qw['p99_ms']:.2f}ms")
    print(f"  prometheus   {results['prometheus']['lines']} lines, valid")
    for name, ok in checks.items():
        print(f"  check {name:<32} {'PASS' if ok else 'FAIL'}")

    perf.write_json(output, extra={"benchmarks": results})
    print(f"wrote {output}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
