"""Difficulty calibration: template-oracle ceiling vs XGBoost floor.

Usage: python scripts/calibrate.py ls hf an [scale]
"""

import dataclasses
import re
import sys

import numpy as np

from repro import CorpusConfig, build_dataset
from repro.core.schema import RiskLevel
from repro.corpus.lexicon import (
    HARD_SIGNAL_SENTENCES,
    SIGNAL_SENTENCES,
    SLOT_POOLS,
)
from repro.eval.metrics import accuracy, macro_f1
from repro.models import create_model


def bank_regexes():
    regs = []
    for lvl in RiskLevel:
        for bank in (SIGNAL_SENTENCES[lvl], HARD_SIGNAL_SENTENCES[lvl]):
            for t in bank:
                pat = re.escape(t)
                for slot in SLOT_POOLS:
                    pat = pat.replace(re.escape("{" + slot + "}"), r".{2,30}?")
                regs.append((re.compile(pat, re.IGNORECASE), lvl))
    return regs


REGS = bank_regexes()


def oracle_level(text):
    votes = np.zeros(4)
    for rgx, lvl in REGS:
        votes[int(lvl)] += len(rgx.findall(text))
    if votes.sum() == 0:
        return None
    return int(votes.argmax())


def main(ls, hf, an, scale=0.25):
    cfg = dataclasses.replace(
        CorpusConfig().scaled(scale),
        lexical_strength=ls,
        hard_fraction=hf,
        ambiguity_noise=an,
    )
    res = build_dataset(cfg, near_dedup=False)
    splits = res.dataset.splits()
    allw = splits.train + splits.validation + splits.test
    y = np.array([int(w.label) for w in allw])
    yhat = np.array(
        [
            (
                oracle_level(w.latest.text)
                if oracle_level(w.latest.text) is not None
                else 1
            )
            for w in allw
        ]
    )
    print(
        f"oracle: acc={accuracy(y, yhat):.3f} mf1={macro_f1(y, yhat):.3f}",
    )
    m = create_model("xgboost")
    m.fit(splits.train, splits.validation)
    yt = np.array([int(w.label) for w in splits.test])
    pred = m.predict(splits.test)
    print(f"xgboost: acc={accuracy(yt, pred):.3f} mf1={macro_f1(yt, pred):.3f}")


if __name__ == "__main__":
    args = [float(a) for a in sys.argv[1:]]
    main(*args)
