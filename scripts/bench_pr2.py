"""PR 2 benchmark: serving throughput, incremental BPE, bucketed eval.

Writes machine-readable results to BENCH_PR2.json. "before" numbers run
the retained reference paths (per-window scoring, `_train_reference`,
unbucketed batches); "after" numbers run the shipped fast paths.

Targets (the acceptance floors, checked at exit):
  * serve: engine `predict_many` >= 3x per-window `predict_proba`,
    bitwise-identical labels;
  * BPE: incremental trainer >= 5x the rescan reference at 2000 merges,
    identical merge table;
  * bucketed eval: pad-waste ratio strictly reduced, bitwise-identical
    label predictions.

Usage:
    PYTHONPATH=src python scripts/bench_pr2.py [scale] [output.json]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

import numpy as np

from repro import perf
from repro.core.config import CorpusConfig
from repro.core.pipeline import build_dataset
from repro.models.neural_common import (
    TrainerConfig,
    flat_lengths,
    pad_waste_ratio,
    predict_classifier,
    predict_proba_classifier,
)
from repro.models.plm import PLMConfig
from repro.models.roberta import RobertaRiskModel
from repro.nn import no_grad
from repro.serve import EngineConfig, run_serve_bench
from repro.temporal.windows import PostWindow
from repro.text.bpe import BPETokenizer


def bpe_bench_frequencies(texts: list[str], tail_words: int = 6000):
    """Word-frequency table for the BPE bench: corpus words plus a
    deterministic synthetic long tail.

    The template-generated corpus saturates at ~500 unique words — far
    too few distinct pairs to learn 2000 merges (real Reddit vocabulary
    is open-ended). The tail restores realistic lexical diversity so the
    requested merge budget is actually exercised.
    """
    bpe = BPETokenizer(num_merges=1)
    word_freq = bpe._word_frequencies(texts)
    rng = np.random.default_rng(0)
    letters = np.array(list("abcdefghijklmnopqrstuvwxyz"))
    for _ in range(tail_words):
        length = int(rng.integers(4, 13))
        word = "".join(rng.choice(letters, size=length))
        word_freq[word] += int(rng.integers(2, 40))
    return word_freq


def bench_bpe(texts: list[str], num_merges: int = 2000) -> dict:
    """Merge learning, fast vs reference, on one shared frequency table.

    Tokenisation (`_word_frequencies`) is identical input prep for both
    trainers, so it is computed once outside the timed region — the
    numbers compare the training algorithms, not the shared text pass.
    """
    word_freq = bpe_bench_frequencies(texts)
    start = time.perf_counter()
    fast = BPETokenizer(num_merges=num_merges).train_from_frequencies(word_freq)
    after = time.perf_counter() - start
    start = time.perf_counter()
    ref = BPETokenizer(num_merges=num_merges)._train_reference_from_frequencies(
        word_freq
    )
    before = time.perf_counter() - start
    return {
        "num_merges": num_merges,
        "texts": len(texts),
        "unique_words": len(word_freq),
        "merges_learned": len(fast.merges),
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "merge_tables_equal": fast.merges == ref.merges,
    }


def train_small_plm(splits, pretrain_texts):
    model = RobertaRiskModel(
        config=PLMConfig(dim=16, num_layers=1, num_heads=2, ffn_hidden=32,
                         max_len=96),
        trainer=TrainerConfig(epochs=2, batch_size=16, patience=3, seed=0),
        pretrain_texts=pretrain_texts[:2000],
        pretrain_steps=30,
        seed=0,
    )
    model.fit(splits.train, splits.validation)
    return model


def single_post_windows(windows):
    """Explode user windows into one-post windows — the serving unit.

    A deployed scorer sees posts one at a time as they arrive; these are
    also length-diverse (posts vary from a few to ~50 tokens) where full
    user windows all truncate to ``max_len``, so they exercise both the
    micro-batcher and length bucketing realistically.
    """
    return [
        PostWindow(author=w.author, posts=(post,), label=w.label)
        for w in windows
        for post in w.posts
    ]


def bench_serve(model, windows, requests: int = 384) -> dict:
    result = run_serve_bench(
        model, windows, requests=requests,
        config=EngineConfig(max_batch_size=32),
    )
    return result.as_dict()


def bench_bucketed(model, windows, batch_size: int = 32) -> dict:
    encoded = model.pipeline.encode(windows)
    lengths = flat_lengths(encoded)
    max_len = model.config.max_len

    def run(bucketed: bool):
        start = time.perf_counter()
        labels = predict_classifier(
            model.network, model._forward, encoded,
            batch_size=batch_size, bucket_by_length=bucketed,
        )
        return labels, time.perf_counter() - start

    labels_after, after = run(True)
    labels_before, before = run(False)
    probs_after = predict_proba_classifier(
        model.network, model._forward, encoded, bucket_by_length=True
    )
    probs_before = predict_proba_classifier(
        model.network, model._forward, encoded, bucket_by_length=False
    )
    return {
        "windows": len(windows),
        "batch_size": batch_size,
        "before_s": before,
        "after_s": after,
        "speedup": before / after,
        "pad_waste_before": pad_waste_ratio(lengths, batch_size, max_len),
        "pad_waste_after": pad_waste_ratio(
            lengths, batch_size, max_len, bucket_by_length=True
        ),
        "labels_identical": bool(np.array_equal(labels_before, labels_after)),
        "max_prob_diff": float(np.abs(probs_before - probs_after).max()),
    }


def bench_no_grad(model, windows) -> dict:
    encoded = model.pipeline.encode(windows)
    idx = np.arange(len(encoded))
    model.network.eval()

    def grad_forward():
        model._forward(encoded, idx)

    def nograd_forward():
        with no_grad():
            model._forward(encoded, idx)

    def best_of(fn, repeats=3):
        best = np.inf
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    before = best_of(grad_forward)
    after = best_of(nograd_forward)
    model.network.train()
    return {"before_s": before, "after_s": after, "speedup": before / after}


def main(argv: list[str]) -> int:
    scale = float(argv[0]) if argv else 0.1
    output = Path(argv[1]) if len(argv) > 1 else Path("BENCH_PR2.json")

    perf.reset()
    print(f"bench_pr2: scale={scale}")
    results: dict = {"scale": scale}

    build = build_dataset(CorpusConfig().scaled(scale), near_dedup=False)
    splits = build.dataset.splits()
    pretrain = build.dataset.pretrain_texts

    results["bpe_train"] = bench_bpe(pretrain[:4000])

    model = train_small_plm(splits, pretrain)
    windows = single_post_windows(
        (splits.test or []) + (splits.validation or []) + splits.train
    )
    results["serve"] = bench_serve(model, windows[:64])
    results["bucketed_eval"] = bench_bucketed(model, windows)
    results["no_grad_forward"] = bench_no_grad(model, windows[:64])

    checks = {
        "serve_3x": results["serve"]["speedup"] >= 3.0,
        "serve_labels_identical": results["serve"]["labels_identical"],
        "bpe_5x": results["bpe_train"]["speedup"] >= 5.0,
        "bpe_merges_equal": results["bpe_train"]["merge_tables_equal"],
        "bucketed_less_pad_waste": (
            results["bucketed_eval"]["pad_waste_after"]
            < results["bucketed_eval"]["pad_waste_before"]
        ),
        "bucketed_labels_identical": results["bucketed_eval"]["labels_identical"],
    }
    results["checks"] = checks

    for name, stats in results.items():
        if isinstance(stats, dict) and "speedup" in stats:
            print(f"  {name:<16} {stats['speedup']:6.1f}x")
    waste = results["bucketed_eval"]
    print(f"  pad waste        {waste['pad_waste_before']:.3f} -> "
          f"{waste['pad_waste_after']:.3f}")
    for name, ok in checks.items():
        print(f"  check {name:<26} {'PASS' if ok else 'FAIL'}")

    perf.write_json(output, extra={"benchmarks": results})
    print(f"wrote {output}")
    return 0 if all(checks.values()) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
