"""Convenience wrapper for the repro static analyzer.

Mirrors scripts/bench_smoke.py: a one-file entry point for pre-merge
hygiene, equivalent to ``python -m repro lint`` (same flags, same exit
codes — 0 clean/baselined, 1 new findings or stale baseline entries).

Usage:
    PYTHONPATH=src python scripts/lint.py [paths...] [--format json] ...
"""

from __future__ import annotations

import sys

from repro.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
