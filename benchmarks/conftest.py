"""Benchmark configuration.

``REPRO_BENCH_SCALE`` (float, default 0.3) controls the corpus fraction
used by every benchmark; 1.0 regenerates the paper-sized corpus. The
dataset is built once per session and shared through the experiments'
``cached_build``.
"""

import os

import pytest

from repro.experiments.common import cached_build

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.3"))


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def build(bench_scale):
    """The shared dataset build (constructed once per session)."""
    return cached_build(bench_scale)
