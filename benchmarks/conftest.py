"""Benchmark configuration.

``REPRO_BENCH_SCALE`` (float, default 0.3) controls the corpus fraction
used by every benchmark; 1.0 regenerates the paper-sized corpus. The
dataset is built once per session and shared through the experiments'
``cached_build``.
"""

import os

import pytest

from repro.experiments.common import cached_build


def _read_bench_scale() -> float:
    """Parse and validate ``REPRO_BENCH_SCALE`` (must be in (0, 1])."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "0.3")
    try:
        scale = float(raw)
    except ValueError:
        raise SystemExit(
            f"REPRO_BENCH_SCALE must be a float in (0, 1], got {raw!r}"
        ) from None
    if not 0.0 < scale <= 1.0:
        raise SystemExit(
            "REPRO_BENCH_SCALE must be in (0, 1] — a fraction of the "
            f"paper-sized corpus, 1.0 for full scale — got {raw!r}"
        )
    return scale


BENCH_SCALE = _read_bench_scale()


@pytest.fixture(scope="session")
def bench_scale() -> float:
    return BENCH_SCALE


@pytest.fixture(scope="session")
def build(bench_scale):
    """The shared dataset build (constructed once per session)."""
    return cached_build(bench_scale)
