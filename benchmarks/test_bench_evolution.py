"""Benchmark: risk-evolution analysis (extension experiment)."""

from repro.experiments import evolution_analysis


def test_bench_evolution(benchmark, bench_scale, capsys):
    figure = benchmark.pedantic(
        evolution_analysis.run, args=(bench_scale,), rounds=1, iterations=1
    )
    report = figure.report
    # The latent chain is lazy: persistence dominates transitions.
    assert figure.persistence > 0.4
    # A substantial share of users escalate at least once (risk evolves).
    assert report.escalation_prevalence > 0.2
    with capsys.disabled():
        print()
        print(evolution_analysis.render(figure))
