"""Benchmark: regenerate Figure 4 (top-20 most active users)."""

from repro.experiments import fig4_top_users


def test_bench_fig4(benchmark, bench_scale, capsys):
    profiles = benchmark.pedantic(
        fig4_top_users.run, args=(bench_scale,), rounds=1, iterations=1
    )
    assert len(profiles) == 20
    # Ranks ordered by activity, identifiers anonymised to ranks.
    totals = [p.total_posts for p in profiles]
    assert totals == sorted(totals, reverse=True)
    assert all(p.total_posts == sum(p.counts.values()) for p in profiles)
    with capsys.disabled():
        print()
        print(fig4_top_users.render(profiles))
