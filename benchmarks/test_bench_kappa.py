"""Benchmark: the annotation campaign's Fleiss κ (paper: 0.7206)."""

from repro.experiments import kappa_consistency


def test_bench_kappa(benchmark, bench_scale, capsys):
    result = benchmark.pedantic(
        kappa_consistency.run, args=(bench_scale,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(f"kappa={result.kappa:.4f} (paper {kappa_consistency.PAPER_KAPPA}), "
              f"{result.interpretation}, joint n={result.joint_samples}")
    assert result.within_tolerance
    assert result.interpretation == "substantial"
    assert result.all_inspections_passed
