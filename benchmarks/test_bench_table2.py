"""Benchmark: regenerate Table II (dataset comparison)."""

from repro.experiments import table2_comparison


def test_bench_table2(benchmark, bench_scale, capsys):
    rows = benchmark.pedantic(
        table2_comparison.run, args=(bench_scale,), rounds=1, iterations=1
    )
    assert len(rows) == 9
    ours = rows[-1]
    checks = table2_comparison.advantage_checks(ours)
    # At reduced scale the user count shrinks; structural claims must hold.
    assert checks["post_and_user_level"]
    assert checks["fine_grained"]
    assert checks["fully_manual_and_available"]
    with capsys.disabled():
        print()
        print(table2_comparison.render(rows))
