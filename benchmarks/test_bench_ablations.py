"""Benchmark: design-choice ablations (feature dims, window, voting, MLM)."""

from repro.experiments import ablations


def test_bench_ablation_feature_dimensions(benchmark, bench_scale, capsys):
    rows = benchmark.pedantic(
        ablations.feature_dimension_ablation,
        args=(bench_scale,),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 4  # all + three single dimensions
    full = rows[0]
    # All features together should not lose to any single dimension badly.
    assert full.accuracy_pct >= max(r.accuracy_pct for r in rows[1:]) - 10.0
    with capsys.disabled():
        print()
        print(ablations.render(rows))


def test_bench_ablation_window_size(benchmark, bench_scale, capsys):
    rows = benchmark.pedantic(
        ablations.window_size_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    assert len(rows) == 3
    with capsys.disabled():
        print()
        print(ablations.render(rows))


def test_bench_ablation_voting(benchmark, bench_scale, capsys):
    stats = benchmark.pedantic(
        ablations.voting_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    # Voting + expert review must produce cleaner labels than solo work.
    assert stats["voted_noise"] <= stats["solo_noise"]
    with capsys.disabled():
        print()
        print("voting ablation:", {k: round(v, 4) for k, v in stats.items()})


def test_bench_ablation_embedding_init(benchmark, bench_scale, capsys):
    rows = benchmark.pedantic(
        ablations.embedding_init_ablation,
        args=(bench_scale,),
        rounds=1,
        iterations=1,
    )
    assert len(rows) == 2
    with capsys.disabled():
        print()
        print(ablations.render(rows))


def test_bench_ablation_pretraining(benchmark, bench_scale, capsys):
    rows = benchmark.pedantic(
        ablations.pretraining_ablation, args=(bench_scale,), rounds=1, iterations=1
    )
    assert len(rows) == 2
    with capsys.disabled():
        print()
        print(ablations.render(rows))
