"""Benchmark: regenerate Table IV (data scale vs model scale)."""

from repro.experiments import table4_scale


def test_bench_table4(benchmark, bench_scale, capsys):
    result = benchmark.pedantic(
        table4_scale.run, args=(bench_scale,), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(table4_scale.render(result))
    # The paper's claim: the full-data base model matches or beats the
    # small-data tuned large model on accuracy.
    assert result.large_data.accuracy >= result.small_data.accuracy - 0.05
