"""Benchmark: regenerate Figures 2 & 3 (per-class word clouds)."""

from repro.core.schema import ALL_LEVELS, RiskLevel
from repro.experiments import fig23_wordclouds


def test_bench_fig2_fig3(benchmark, bench_scale, capsys):
    clouds = benchmark.pedantic(
        fig23_wordclouds.run, args=(bench_scale,), rounds=1, iterations=1
    )
    assert set(clouds) == set(ALL_LEVELS)
    for cloud in clouds.values():
        assert cloud.support > 0
        assert cloud.top(5)
        assert all(0 < w <= 1.0 for _, w in cloud.top(20))
    # Figure 2/3 ordering: Ideation is the largest class, Attempt smallest.
    assert clouds[RiskLevel.IDEATION].support > clouds[RiskLevel.ATTEMPT].support
    with capsys.disabled():
        print()
        print(fig23_wordclouds.render(clouds, k=8))
