"""Benchmark: regenerate Figure 1 (posts-per-user distribution)."""

from repro.experiments import fig1_posts_per_user


def test_bench_fig1(benchmark, bench_scale, capsys):
    data = benchmark.pedantic(
        fig1_posts_per_user.run, args=(bench_scale,), rounds=1, iterations=1
    )
    # Paper: "the majority of users have fewer than 20 historical posts".
    assert data.fraction_under_20 > 0.5
    # Long right tail exists.
    assert data.counts_per_user.max() > 5 * data.median_posts
    with capsys.disabled():
        print()
        print(fig1_posts_per_user.render(data))
