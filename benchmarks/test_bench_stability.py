"""Benchmark: run-to-run stability of a baseline (paper §III-B)."""

from repro.experiments import stability


def test_bench_stability(benchmark, bench_scale, capsys):
    result = benchmark.pedantic(
        stability.run,
        args=(bench_scale,),
        kwargs={"model": "xgboost", "seeds": (0, 1, 2)},
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(stability.render(result))
    assert result.stable
