"""Micro-benchmarks of the substrates (build, preprocess, models, nn).

These are the performance-regression guards a downstream user of the
library cares about, independent of the paper tables.
"""

import numpy as np

from repro.annotation import AnnotationCampaign
from repro.boosting import GBMParams, GradientBoostingClassifier
from repro.core.config import AnnotationConfig, CorpusConfig
from repro.corpus import generate_corpus
from repro.models.plm import PLMConfig
from repro.nn import Adam, Tensor, TransformerEncoder, cross_entropy, mean_pool
from repro.preprocess import preprocess
from repro.text import TfidfVectorizer


def test_bench_corpus_generation(benchmark):
    corpus = benchmark.pedantic(
        lambda: generate_corpus(scale=0.1), rounds=1, iterations=1
    )
    assert len(corpus.annotated_posts) > 500


def test_bench_preprocess(benchmark, build):
    posts = build.corpus.annotated_posts
    result = benchmark.pedantic(
        preprocess, args=(posts,), kwargs={"enable_near_dedup": False},
        rounds=1, iterations=1,
    )
    assert result.report.output_posts > 0


def test_bench_annotation_campaign(benchmark, build):
    posts = [
        p for p in build.corpus.annotated_posts if p.oracle_label is not None
    ][:1500]
    result = benchmark.pedantic(
        lambda: AnnotationCampaign(AnnotationConfig()).run(posts),
        rounds=1, iterations=1,
    )
    assert result.num_labelled > 0


def test_bench_tfidf(benchmark, build):
    texts = [p.text for p in build.dataset.posts[:2000]]
    matrix = benchmark.pedantic(
        lambda: TfidfVectorizer(max_features=500).fit_transform(texts),
        rounds=1, iterations=1,
    )
    assert matrix.shape[0] == len(texts)


def test_bench_gbm_fit(benchmark):
    rng = np.random.default_rng(0)
    x = rng.normal(size=(600, 50))
    y = (x[:, 0] + x[:, 1] > 0).astype(int) + (x[:, 2] > 0.8).astype(int)
    model = benchmark.pedantic(
        lambda: GradientBoostingClassifier(
            GBMParams(n_estimators=20, max_depth=4)
        ).fit(x, y),
        rounds=1, iterations=1,
    )
    assert (model.predict(x) == y).mean() > 0.8


def test_bench_transformer_step(benchmark):
    rng = np.random.default_rng(0)
    encoder = TransformerEncoder(500, 64, 2, 4, 96, rng, dropout=0.0)
    from repro.nn import Linear

    head = Linear(64, 4, rng)
    params = list(encoder.parameters()) + list(head.parameters())
    optimizer = Adam(params, lr=1e-3)
    ids = rng.integers(5, 500, size=(16, 64))
    mask = np.ones((16, 64))
    y = rng.integers(0, 4, size=16)

    def step():
        logits = head(mean_pool(encoder(ids, mask=mask), mask))
        loss = cross_entropy(logits, y)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
        return loss.item()

    loss = benchmark.pedantic(step, rounds=3, iterations=1)
    assert np.isfinite(loss)
