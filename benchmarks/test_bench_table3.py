"""Benchmark: regenerate Table III (five-baseline comparison).

One benchmark per baseline so training cost is reported per model; a
final aggregation test prints the full table and checks the paper's
headline ordering (PLMs above every non-PLM baseline).
"""

import numpy as np
import pytest

from repro.eval.metrics import EvalReport
from repro.experiments.table3_baselines import (
    PAPER_TABLE3,
    PLM_PRETRAIN_STEPS,
    PLM_PRETRAIN_TEXTS,
    Table3Result,
    render,
)
from repro.models.registry import TABLE3_ORDER, create_model

_REPORTS: dict[str, EvalReport] = {}


def _train_and_eval(name, dataset, splits):
    kwargs = {}
    if name in ("roberta", "deberta"):
        kwargs["pretrain_texts"] = dataset.pretrain_texts[:PLM_PRETRAIN_TEXTS]
        kwargs["pretrain_steps"] = PLM_PRETRAIN_STEPS
    model = create_model(name, **kwargs)
    model.fit(splits.train, splits.validation)
    y_test = np.array([int(w.label) for w in splits.test])
    return EvalReport.compute(model.name, y_test, model.predict(splits.test))


@pytest.mark.parametrize("name", TABLE3_ORDER)
def test_bench_table3_model(benchmark, build, name):
    dataset = build.dataset
    splits = dataset.splits()
    report = benchmark.pedantic(
        _train_and_eval, args=(name, dataset, splits), rounds=1, iterations=1
    )
    _REPORTS[report.model] = report
    assert 0.0 <= report.accuracy <= 1.0
    assert set(report.class_f1) == {lv for lv in report.class_f1}


def test_bench_table3_summary(benchmark, capsys):
    # Uses the benchmark fixture so --benchmark-only does not skip it;
    # the "benchmark" is just assembling the result table.
    if len(_REPORTS) < len(TABLE3_ORDER):
        pytest.skip("per-model benches did not all run")
    result = benchmark.pedantic(
        lambda: Table3Result(
            reports=[_REPORTS[m] for m in PAPER_TABLE3 if m in _REPORTS]
        ),
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(render(result))
        print("PLMs beat non-PLM baselines:", result.plm_beats_others)
    # Paper's headline hierarchy: each PLM above every non-PLM baseline.
    assert result.plm_beats_others
