"""Benchmark: regenerate Table I (class distribution)."""

from repro.experiments import table1_distribution


def test_bench_table1(benchmark, build, bench_scale, capsys):
    rows = benchmark.pedantic(
        table1_distribution.run, args=(bench_scale,), rounds=1, iterations=1
    )
    assert len(rows) == 4
    assert sum(r.count for r in rows) == build.dataset.num_posts
    # The synthetic mix tracks the published Table I within a few points.
    assert table1_distribution.max_percentage_deviation(rows) < 6.0
    with capsys.disabled():
        print()
        print(table1_distribution.render(rows))
